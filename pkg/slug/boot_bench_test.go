package slug_test

// Startup-latency benchmark pair for the serving path, the figure the
// v2 zero-copy format exists to shrink: boot a saved summary until the
// first query is answered, via (a) the v1 path — read, decode, compile
// — and (b) the v2 path — mmap, validate, query. Both end with the same
// NeighborsOf call, so ns/op is exactly time-to-first-answer.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/pkg/slug"
)

// bootSizes are the Barabasi-Albert node counts the pair sweeps; the
// gap between the two paths should widen with size (decode+compile is
// O(artifact), mmap boot is O(validation sweep) with no allocation).
var bootSizes = []int{2000, 10000, 50000}

type bootFixture struct {
	v1, v2 string // saved artifact paths
}

var (
	bootOnce sync.Once
	bootFix  map[int]bootFixture
	bootDir  string
)

// bootFixtures builds and saves each size's artifact once per process,
// in both formats. The builds dominate wall-clock, so they are shared
// across all benchmark runs and sub-benchmarks.
func bootFixtures(b *testing.B) map[int]bootFixture {
	b.Helper()
	bootOnce.Do(func() {
		dir, err := os.MkdirTemp("", "slug-boot-bench-*")
		if err != nil {
			b.Fatal(err)
		}
		bootDir = dir
		bootFix = make(map[int]bootFixture)
		for _, n := range bootSizes {
			g := graph.BarabasiAlbert(n, 4, 7)
			art, err := slug.Get("slugger").Summarize(context.Background(), g,
				slug.WithIterations(10), slug.WithSeed(7))
			if err != nil {
				b.Fatal(err)
			}
			fx := bootFixture{
				v1: filepath.Join(dir, fmt.Sprintf("n%d.slga", n)),
				v2: filepath.Join(dir, fmt.Sprintf("n%d.slgc", n)),
			}
			if err := slug.Save(fx.v1, art); err != nil {
				b.Fatal(err)
			}
			if err := slug.SaveCompiled(fx.v2, art); err != nil {
				b.Fatal(err)
			}
			bootFix[n] = fx
		}
	})
	if bootFix == nil {
		b.Skip("fixture build failed in an earlier run")
	}
	return bootFix
}

// BenchmarkBootDecodeCompile is the v1 startup path: read the envelope,
// decode the model, compile the query engine, answer one query.
func BenchmarkBootDecodeCompile(b *testing.B) {
	fix := bootFixtures(b)
	for _, n := range bootSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			path := fix[n].v1
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				art, err := slug.Load(path)
				if err != nil {
					b.Fatal(err)
				}
				cs, err := art.Queryable()
				if err != nil {
					b.Fatal(err)
				}
				if len(cs.NeighborsOf(0)) == 0 {
					b.Fatal("vertex 0 has no neighbors")
				}
			}
		})
	}
}

// BenchmarkBootMmapFirstQuery is the v2 startup path: map the file,
// validate the structure, answer one query — no decode, no recompile,
// no allocation proportional to the artifact.
func BenchmarkBootMmapFirstQuery(b *testing.B) {
	fix := bootFixtures(b)
	for _, n := range bootSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			path := fix[n].v2
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := slug.OpenMapped(path)
				if err != nil {
					b.Fatal(err)
				}
				cs, err := m.Queryable()
				if err != nil {
					b.Fatal(err)
				}
				if len(cs.NeighborsOf(0)) == 0 {
					b.Fatal("vertex 0 has no neighbors")
				}
				m.Close()
			}
		})
	}
}
