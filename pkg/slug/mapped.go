package slug

// Zero-copy v2 artifacts. SaveCompiled persists an artifact's compiled
// form in the SLGC layout — a fixed-width, aligned, little-endian file
// whose bytes are the CSR query-engine arrays — and OpenMapped boots a
// server straight off such a file: the file is memory-mapped, a
// structural validation pass bounds-checks the untrusted bytes, and the
// first query runs without decoding or recompiling anything. Restart
// cost stops growing with summary size.
//
// The portable interchange format remains the v1 SLGA envelope
// ([Save]/[Load]); SLGC is the serving format. A Mapped artifact
// exports back to v1 through WriteTo (byte-identical to the artifact it
// was compiled from), so the two formats round-trip freely.

import (
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/graph"
	"repro/internal/model"
)

// compiledMagic is the v2 zero-copy artifact signature.
const compiledMagic = model.MappedMagic

// Sentinel errors for rejected v2 compiled artifacts; match with
// errors.Is. Wrapped errors carry the rejected detail.
var (
	// ErrArtifactTruncated marks a v2 file shorter than its header
	// promises — a torn or partial write.
	ErrArtifactTruncated = model.ErrMappedTruncated
	// ErrArtifactMisaligned marks v2 bytes whose base address is not
	// 8-byte aligned, so the zero-copy section casts are unsound.
	ErrArtifactMisaligned = model.ErrMappedMisaligned
	// ErrArtifactChecksum marks a v2 CRC mismatch.
	ErrArtifactChecksum = model.ErrMappedChecksum
	// ErrArtifactCorrupt marks a structurally invalid v2 file.
	ErrArtifactCorrupt = model.ErrMappedCorrupt
)

// Mapped is an Artifact backed by the v2 zero-copy compiled layout:
// either a live memory mapping (OpenMapped) or a heap buffer in the
// same layout (Load on a v2 file). Its Queryable is ready immediately —
// no decode, no compile — and all Artifact methods work as usual.
//
// A Mapped obtained from OpenMapped holds the mapping until Close;
// queries against it (including snapshots derived from its Queryable)
// must not outlive the Close call.
type Mapped struct {
	algo   string
	cost   int64
	cs     *model.CompiledSummary
	size   int64
	mapped bool         // true = mmap-backed, false = heap-backed
	unmap  func() error // nil for heap-backed

	closeOnce sync.Once
	closeErr  error
}

// newMappedFromBytes validates data (already aligned) and wraps it.
func newMappedFromBytes(data []byte, mapped bool, unmap func() error) (*Mapped, error) {
	cs, info, err := model.FromMapped(data)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	return &Mapped{
		algo:   info.Algorithm,
		cost:   info.Cost,
		cs:     cs,
		size:   int64(len(data)),
		mapped: mapped,
		unmap:  unmap,
	}, nil
}

// OpenMapped memory-maps a v2 compiled artifact (written by
// SaveCompiled) and returns it ready to serve: the compiled arrays are
// zero-copy views over the mapping, validated structurally before first
// use. Boot cost is the validation sweep — no allocation proportional
// to the artifact, no decode, no recompile. The full-payload checksum
// is not verified on this path (it would read the whole mapping); use
// Load for a fully checksummed read, or VerifyMapped explicitly.
//
// Close the returned artifact to release the mapping.
func OpenMapped(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //slugvet:ok syncerr (read-only descriptor; the mapping outlives the fd by design)
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, err := mapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("slug: mapping %s: %w", path, err)
	}
	m, err := newMappedFromBytes(data, mmapBacked, unmap)
	if err != nil {
		return nil, fmt.Errorf("slug: opening mapped artifact %s: %w", path, err)
	}
	return m, nil
}

// VerifyMapped runs the full-payload checksum over a v2 artifact file —
// the integrity pass OpenMapped deliberately skips. It reads the whole
// file.
func VerifyMapped(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return model.VerifyChecksum(raw)
}

// Algorithm returns the producing algorithm's canonical name, preserved
// in the v2 header.
func (m *Mapped) Algorithm() string { return m.algo }

// Cost returns the encoding cost of the source artifact, preserved in
// the v2 header.
func (m *Mapped) Cost() int64 { return m.cost }

// Decode reconstructs the represented graph from the compiled form.
func (m *Mapped) Decode() *graph.Graph { return m.cs.Decode() }

// Queryable returns the compiled query engine. For a Mapped artifact
// this is free: the engine's arrays are the file's bytes.
func (m *Mapped) Queryable() (*model.CompiledSummary, error) { return m.cs, nil }

// WriteTo exports the artifact back to the portable v1 SLGA envelope,
// reconstructing the hierarchical model from the compiled arrays. The
// reconstruction is exact: for an artifact that was hierarchical before
// SaveCompiled, the emitted bytes are identical to the original
// artifact's WriteTo. (Flat baseline artifacts come back as their
// cost-equivalent hierarchical conversion — the form that was compiled.)
// Use SaveCompiled to persist the v2 form itself.
func (m *Mapped) WriteTo(w io.Writer) (int64, error) {
	return writeEnvelope(w, kindHierarchical, m.algo, m.cs.ToSummary().WriteTo)
}

// MappedBytes returns the size of the backing mapping or buffer.
func (m *Mapped) MappedBytes() int64 { return m.size }

// Format describes the backing: "v2-mapped" for a live memory mapping,
// "v2-heap" for the same layout loaded into memory.
func (m *Mapped) Format() string {
	if m.mapped {
		return "v2-mapped"
	}
	return "v2-heap"
}

// Close releases the memory mapping (no-op for heap-backed artifacts).
// The artifact — and any QueryCtx or overlay derived from it — must not
// be used afterwards. Idempotent.
func (m *Mapped) Close() error {
	m.closeOnce.Do(func() {
		if m.unmap != nil {
			m.closeErr = m.unmap()
		}
	})
	return m.closeErr
}

// WriteCompiledTo serializes an artifact's compiled form in the v2
// zero-copy layout. The artifact is compiled first if it has not been
// already (the one-time cost OpenMapped readers never pay again).
func WriteCompiledTo(w io.Writer, a Artifact) (int64, error) {
	cs, err := a.Queryable()
	if err != nil {
		return 0, err
	}
	return model.WriteCompiled(w, cs, model.MappedInfo{Algorithm: a.Algorithm(), Cost: a.Cost()})
}

// SaveCompiled writes an artifact to path in the v2 zero-copy compiled
// layout ("SLGC"), the format OpenMapped boots from. The write is
// crash-safe: tmp + fsync + rename, like Save.
func SaveCompiled(path string, a Artifact) error {
	cs, err := a.Queryable()
	if err != nil {
		return err
	}
	info := model.MappedInfo{Algorithm: a.Algorithm(), Cost: a.Cost()}
	return atomicWrite(path, func(w io.Writer) (int64, error) {
		return model.WriteCompiled(w, cs, info)
	})
}

// readMappedFrom drains a reader positioned at a v2 stream into an
// aligned buffer, verifies the full checksum (the bytes are in memory
// anyway), and wraps them as a heap-backed Mapped.
func readMappedFrom(r io.Reader) (*Mapped, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("slug: reading compiled artifact: %w", err)
	}
	if err := model.VerifyChecksum(raw); err != nil {
		return nil, err
	}
	buf := model.AlignedBuffer(len(raw))
	copy(buf, raw)
	return newMappedFromBytes(buf, false, nil)
}
