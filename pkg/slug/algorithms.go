package slug

import (
	"context"

	"repro/internal/baselines/mosso"
	"repro/internal/baselines/randomized"
	"repro/internal/baselines/sags"
	"repro/internal/baselines/sweg"
	"repro/internal/core"
	"repro/internal/flat"
	"repro/internal/graph"
)

// The five algorithms of the paper's evaluation register themselves at
// init, so slug.Get("<name>") works out of the box for: slugger, sweg,
// mosso, randomized, sags.
func init() {
	Register(sluggerSummarizer{})
	Register(swegSummarizer{})
	Register(mossoSummarizer{})
	Register(randomizedSummarizer{})
	Register(sagsSummarizer{})
}

// defaultIterations mirrors the paper's T = 20 default shared by the
// iterative algorithms, used to fill Event.Total when the caller keeps
// the default.
const defaultIterations = 20

// sluggerSummarizer adapts SLUGGER (internal/core) to the unified API.
type sluggerSummarizer struct{}

// Name returns "slugger".
func (sluggerSummarizer) Name() string { return "slugger" }

// Summarize runs SLUGGER and returns a hierarchical artifact. All
// options apply: iterations, height bound, seed, workers, progress.
func (sluggerSummarizer) Summarize(ctx context.Context, g *graph.Graph, opts ...Option) (Artifact, error) {
	cfg := resolve(opts)
	coreCfg := core.Config{
		T:       cfg.iterations,
		Hb:      cfg.heightBound,
		Seed:    cfg.seed,
		Workers: cfg.workers,
	}
	total := cfg.iterations
	if total <= 0 {
		total = defaultIterations
	}
	if cfg.progress != nil {
		coreCfg.OnIteration = func(t int, cost int64) {
			cfg.emit(Event{Algorithm: "slugger", Stage: StageIteration, Step: t, Total: total, Cost: cost})
		}
	}
	sum, _, err := core.SummarizeCtx(ctx, g, coreCfg)
	if err != nil {
		return nil, err
	}
	cfg.emit(Event{Algorithm: "slugger", Stage: StageDone, Step: total, Total: total, Cost: sum.Cost()})
	return NewHierarchical("slugger", sum), nil
}

// finishFlat wraps a baseline run's output, emitting the StageDone
// event on success.
func finishFlat(cfg buildConfig, algo string, s *flat.Summary, err error, step, total int) (Artifact, error) {
	if err != nil {
		return nil, err
	}
	cfg.emit(Event{Algorithm: algo, Stage: StageDone, Step: step, Total: total, Cost: s.Cost()})
	return NewFlat(algo, s), nil
}

// swegSummarizer adapts SWeG (lossless mode) to the unified API.
type swegSummarizer struct{}

// Name returns "sweg".
func (swegSummarizer) Name() string { return "sweg" }

// Summarize runs SWeG and returns a flat artifact. Iterations, seed and
// progress apply; height bound and workers are ignored.
func (swegSummarizer) Summarize(ctx context.Context, g *graph.Graph, opts ...Option) (Artifact, error) {
	cfg := resolve(opts)
	swegCfg := sweg.Config{T: cfg.iterations}
	total := cfg.iterations
	if total <= 0 {
		total = defaultIterations
	}
	if cfg.progress != nil {
		swegCfg.OnIteration = func(t int) {
			cfg.emit(Event{Algorithm: "sweg", Stage: StageIteration, Step: t, Total: total, Cost: CostUnknown})
		}
	}
	s, err := sweg.SummarizeCtx(ctx, g, cfg.seed, swegCfg)
	return finishFlat(cfg, "sweg", s, err, total, total)
}

// mossoSummarizer adapts MoSSo (batch setting) to the unified API.
type mossoSummarizer struct{}

// Name returns "mosso".
func (mossoSummarizer) Name() string { return "mosso" }

// Summarize streams the graph's edges through MoSSo and returns a flat
// artifact. Seed and progress apply (progress steps count streamed
// edges); the remaining options are ignored.
func (mossoSummarizer) Summarize(ctx context.Context, g *graph.Graph, opts ...Option) (Artifact, error) {
	cfg := resolve(opts)
	mossoCfg := mosso.Config{}
	if cfg.progress != nil {
		mossoCfg.OnProgress = func(processed, totalEdges int) {
			cfg.emit(Event{Algorithm: "mosso", Stage: StageIteration, Step: processed, Total: totalEdges, Cost: CostUnknown})
		}
	}
	s, err := mosso.SummarizeCtx(ctx, g, cfg.seed, mossoCfg)
	totalEdges := int(g.NumEdges())
	return finishFlat(cfg, "mosso", s, err, totalEdges, totalEdges)
}

// randomizedSummarizer adapts the Randomized greedy search to the
// unified API.
type randomizedSummarizer struct{}

// Name returns "randomized".
func (randomizedSummarizer) Name() string { return "randomized" }

// Summarize runs the randomized greedy search and returns a flat
// artifact. Seed and progress apply (the search has no fixed iteration
// count, so only StageDone is emitted); the remaining options are
// ignored.
func (randomizedSummarizer) Summarize(ctx context.Context, g *graph.Graph, opts ...Option) (Artifact, error) {
	cfg := resolve(opts)
	s, err := randomized.SummarizeCtx(ctx, g, cfg.seed)
	return finishFlat(cfg, "randomized", s, err, 1, 1)
}

// sagsSummarizer adapts SAGS to the unified API.
type sagsSummarizer struct{}

// Name returns "sags".
func (sagsSummarizer) Name() string { return "sags" }

// Summarize runs SAGS and returns a flat artifact. Seed and progress
// apply (progress steps count LSH bands); the remaining options are
// ignored.
func (sagsSummarizer) Summarize(ctx context.Context, g *graph.Graph, opts ...Option) (Artifact, error) {
	cfg := resolve(opts)
	sagsCfg := sags.Config{}
	// The band count is owned by sags.Config's defaults; learn it from
	// the OnBand callbacks rather than duplicating the constant here.
	// It only feeds the StageDone event, which is dropped without a
	// progress callback anyway.
	bands := 0
	if cfg.progress != nil {
		sagsCfg.OnBand = func(band, totalBands int) {
			bands = totalBands
			cfg.emit(Event{Algorithm: "sags", Stage: StageIteration, Step: band, Total: totalBands, Cost: CostUnknown})
		}
	}
	s, err := sags.SummarizeCtx(ctx, g, cfg.seed, sagsCfg)
	return finishFlat(cfg, "sags", s, err, bands, bands)
}
