package slug

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/algos"
	"repro/internal/graph"
)

func shardParityGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"er": graph.ErdosRenyi(150, 600, 3),
		"ba": graph.BarabasiAlbert(150, 3, 4),
	}
}

// TestShardedParity is the shard-parity suite of the acceptance
// criteria: for k in {1, 2, 8} on ER and BA graphs, the sharded
// artifact decodes to exactly the input, and the federated query
// engine agrees with the unsharded compiled engine on every vertex's
// neighborhood, on edge probes, and on PageRank.
func TestShardedParity(t *testing.T) {
	ctx := context.Background()
	opts := []Option{WithIterations(8), WithSeed(1)}
	for name, g := range shardParityGraphs() {
		single, err := Get("slugger").Summarize(ctx, g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		scs, err := single.Queryable()
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 8} {
			sh, err := SummarizeSharded(ctx, g, k, opts...)
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			if sh.Algorithm() != "slugger" || sh.NumShards() != k || sh.NumNodes() != g.NumNodes() {
				t.Fatalf("%s k=%d: artifact metadata %q/%d/%d", name, k, sh.Algorithm(), sh.NumShards(), sh.NumNodes())
			}
			if !graph.Equal(sh.Decode(), g) {
				t.Fatalf("%s k=%d: Decode differs from the input graph", name, k)
			}
			if err := sh.Validate(g); err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			fed, err := sh.Queryable()
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			// Neighbor parity on every vertex, edge parity on every edge
			// plus sampled non-edges.
			qc := scs.AcquireCtx()
			fc := fed.AcquireCtx()
			n := int32(g.NumNodes())
			for v := int32(0); v < n; v++ {
				want := fmt.Sprint(qc.NeighborsOf(v))
				if got := fmt.Sprint(fc.NeighborsOf(v)); got != want {
					t.Fatalf("%s k=%d: neighbors(%d) = %s, want %s", name, k, v, got, want)
				}
			}
			g.ForEachEdge(func(u, v int32) {
				if !fc.HasEdge(u, v) {
					t.Fatalf("%s k=%d: edge (%d,%d) missing from federated engine", name, k, u, v)
				}
			})
			for u := int32(0); u < n; u++ {
				for d := int32(1); d <= 5; d++ {
					v := (u + d*17) % n
					if u != v && fc.HasEdge(u, v) != qc.HasEdge(u, v) {
						t.Fatalf("%s k=%d: hasedge(%d,%d) diverges", name, k, u, v)
					}
				}
			}
			scs.ReleaseCtx(qc)
			fed.ReleaseCtx(fc)

			// PageRank on the federated view matches the single engine:
			// identical neighbor lists mean identical arithmetic.
			ss := algos.OnCompiled(scs)
			fs := algos.OnSharded(fed)
			pr1 := algos.PageRank(ss, 0.85, 20)
			pr2 := algos.PageRank(fs, 0.85, 20)
			ss.Release()
			fs.Release()
			for v := range pr1 {
				if diff := pr1[v] - pr2[v]; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("%s k=%d: pagerank[%d] %g != %g", name, k, v, pr2[v], pr1[v])
				}
			}
		}
	}
}

// TestShardedK1ByteIdentical pins the k=1 guarantee: the single shard's
// embedded payload is byte-identical to the artifact the unsharded path
// produces under the same options.
func TestShardedK1ByteIdentical(t *testing.T) {
	ctx := context.Background()
	for name, g := range shardParityGraphs() {
		opts := []Option{WithIterations(8), WithSeed(7)}
		direct, err := Get("slugger").Summarize(ctx, g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := SummarizeSharded(ctx, g, 1, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var want, got bytes.Buffer
		if _, err := direct.WriteTo(&want); err != nil {
			t.Fatal(err)
		}
		if _, err := sh.Shards[0].WriteTo(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("%s: k=1 shard payload differs from the unsharded artifact", name)
		}
		if len(sh.Boundary) != 0 {
			t.Fatalf("%s: k=1 has %d boundary edges", name, len(sh.Boundary))
		}
	}
}

func TestShardedDeterministicAcrossWorkerBudgets(t *testing.T) {
	ctx := context.Background()
	g := graph.BarabasiAlbert(150, 3, 9)
	var streams [][]byte
	for _, workers := range []int{1, 2, 8} {
		sh, err := SummarizeSharded(ctx, g, 4, WithIterations(6), WithSeed(2), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := sh.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		streams = append(streams, buf.Bytes())
	}
	for i := 1; i < len(streams); i++ {
		if !bytes.Equal(streams[0], streams[i]) {
			t.Fatalf("worker budget changed the artifact bytes (stream %d)", i)
		}
	}
}

func TestShardedEnvelopeRoundTrip(t *testing.T) {
	ctx := context.Background()
	g := graph.ErdosRenyi(120, 500, 5)
	for _, algo := range []string{"slugger", "sweg"} {
		sh, err := SummarizeSharded(ctx, g, 3, WithIterations(5), WithSeed(1), WithAlgorithm(algo))
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		path := filepath.Join(dir, algo+".slgs")
		if err := Save(path, sh); err != nil {
			t.Fatal(err)
		}
		back, err := LoadSharded(path)
		if err != nil {
			t.Fatal(err)
		}
		if back.Algorithm() != algo || back.NumShards() != 3 || back.NumNodes() != g.NumNodes() {
			t.Fatalf("%s: metadata lost: %q/%d/%d", algo, back.Algorithm(), back.NumShards(), back.NumNodes())
		}
		if back.Cost() != sh.Cost() {
			t.Fatalf("%s: cost %d != %d after round trip", algo, back.Cost(), sh.Cost())
		}
		if !graph.Equal(back.Decode(), g) {
			t.Fatalf("%s: round-tripped artifact no longer decodes to the input", algo)
		}
		// Serialization is deterministic: a second write matches.
		var b1, b2 bytes.Buffer
		if _, err := sh.WriteTo(&b1); err != nil {
			t.Fatal(err)
		}
		if _, err := back.WriteTo(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("%s: round trip changed the serialized bytes", algo)
		}

		// Load reports sharded files distinctly instead of a generic
		// magic error.
		if _, err := Load(path); !errors.Is(err, ErrShardedArtifact) {
			t.Fatalf("Load(sharded file) = %v, want ErrShardedArtifact", err)
		}
	}
}

func TestReadShardedFromRejectsCorrupt(t *testing.T) {
	ctx := context.Background()
	g := graph.ErdosRenyi(60, 200, 5)
	sh, err := SummarizeSharded(ctx, g, 2, WithIterations(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sh.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := ReadShardedFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := ReadShardedFrom(bytes.NewReader([]byte("SLGA"))); err == nil {
		t.Fatal("wrong magic accepted")
	}
	for _, cut := range []int{5, 8, len(good) / 2, len(good) - 1} {
		if _, err := ReadShardedFrom(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte{}, good...)
	bad[4] = 99 // version byte
	if _, err := ReadShardedFrom(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown version accepted")
	}
}

func TestSummarizeShardedErrors(t *testing.T) {
	ctx := context.Background()
	g := graph.ErdosRenyi(30, 90, 1)
	if _, err := SummarizeSharded(ctx, g, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SummarizeSharded(ctx, g, 31); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := SummarizeSharded(ctx, g, 2, WithAlgorithm("nope")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSummarizeShardedCancellation(t *testing.T) {
	g := graph.ErdosRenyi(400, 3000, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SummarizeSharded(ctx, g, 4, WithIterations(20)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSummarizeShardedProgress(t *testing.T) {
	ctx := context.Background()
	g := graph.ErdosRenyi(80, 300, 2)
	var events []Event
	sh, err := SummarizeSharded(ctx, g, 4, WithIterations(4),
		WithProgress(func(ev Event) { events = append(events, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 4 iterations + done", len(events))
	}
	for i := 0; i < 4; i++ {
		ev := events[i]
		if ev.Stage != StageIteration || ev.Step != i+1 || ev.Total != 4 {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	last := events[4]
	if last.Stage != StageDone || last.Cost != sh.Cost() {
		t.Fatalf("final event = %+v", last)
	}
}

// TestShardedBuildFasterSmoke only checks the sharded path completes
// and reports a sane cost; the actual speedup measurement lives in the
// benchmark pair (BenchmarkShardedBuildSingle/K4, recorded in
// BENCH_5.json) since wall-clock assertions are flaky under CI load.
func TestShardedCostAccounting(t *testing.T) {
	ctx := context.Background()
	g := graph.Caveman(8, 10, 4, 3)
	sh, err := SummarizeSharded(ctx, g, 4, WithIterations(6))
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, s := range sh.Shards {
		sum += s.Cost()
	}
	if sh.Cost() != sum+int64(len(sh.Boundary)) {
		t.Fatalf("Cost %d != shards %d + boundary %d", sh.Cost(), sum, len(sh.Boundary))
	}
}

func TestWriteShardedToTemp(t *testing.T) {
	// Save/Load through a real file descriptor (exercises the os paths).
	ctx := context.Background()
	g := graph.ErdosRenyi(40, 120, 8)
	sh, err := SummarizeSharded(ctx, g, 2, WithIterations(3))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.slgs")
	if err := Save(path, sh); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSharded(path); err != nil {
		t.Fatal(err)
	}
}
