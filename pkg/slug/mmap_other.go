//go:build !unix

package slug

import (
	"fmt"
	"io"
	"os"

	"repro/internal/model"
)

// Platforms without a usable mmap read the file into an aligned heap
// buffer in the same layout: every code path behaves identically, only
// the Format label ("v2-heap") and the residency differ.
const mmapBacked = false

func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 {
		return nil, nil, fmt.Errorf("file is empty")
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("file size %d exceeds the address space", size)
	}
	buf := model.AlignedBuffer(int(size))
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, nil, err
	}
	return buf, func() error { return nil }, nil
}
