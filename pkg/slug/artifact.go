package slug

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/flat"
	"repro/internal/graph"
	"repro/internal/model"
)

// Artifact serialization envelope. Every artifact, regardless of the
// producing algorithm, is written as
//
//	magic "SLGA" | version u8 | kind u8 | algoLen varint | algo bytes
//	payload (the wrapped model's own serialized form)
//
// so a reader can tell what built a file and which model it holds
// before decoding the payload. ReadFrom also accepts raw hierarchical
// model streams ("SLGR", as written by older slugger -save runs) and
// wraps them as slugger artifacts.

const (
	envelopeMagic   = "SLGA"
	envelopeVersion = 1

	kindHierarchical = byte(1)
	kindFlat         = byte(2)

	// legacyModelMagic is the header of a bare hierarchical model
	// stream from internal/model, accepted for backward compatibility.
	legacyModelMagic = "SLGR"

	// maxAlgoNameLen bounds the algorithm-name field when reading, so a
	// corrupt length prefix cannot provoke a giant allocation.
	maxAlgoNameLen = 256
)

// Hierarchical is an Artifact wrapping the hierarchical model
// G = (S, P+, P-, H) produced by SLUGGER.
type Hierarchical struct {
	algo    string
	Summary *model.Summary

	compileOnce sync.Once
	compiled    *model.CompiledSummary
}

// NewHierarchical wraps a hierarchical summary as an artifact tagged
// with the producing algorithm's canonical name.
func NewHierarchical(algo string, s *model.Summary) *Hierarchical {
	return &Hierarchical{algo: algo, Summary: s}
}

// Algorithm returns the producing algorithm's canonical name.
func (a *Hierarchical) Algorithm() string { return a.algo }

// Cost returns the hierarchical encoding cost |P+| + |P-| + |H|.
func (a *Hierarchical) Cost() int64 { return a.Summary.Cost() }

// Decode reconstructs the input graph exactly.
func (a *Hierarchical) Decode() *graph.Graph { return a.Summary.Decode() }

// Queryable compiles the summary into the CSR query engine, once; the
// compiled form is cached and shared by later calls.
func (a *Hierarchical) Queryable() (*model.CompiledSummary, error) {
	a.compileOnce.Do(func() { a.compiled = a.Summary.Compile() })
	return a.compiled, nil
}

// WriteTo serializes the artifact through the versioned envelope.
func (a *Hierarchical) WriteTo(w io.Writer) (int64, error) {
	return writeEnvelope(w, kindHierarchical, a.algo, a.Summary.WriteTo)
}

// Flat is an Artifact wrapping the flat model G~ = (S, P, C+, C-) of
// Navlakha et al., produced by the four baseline algorithms.
type Flat struct {
	algo    string
	Summary *flat.Summary

	compileOnce sync.Once
	compiled    *model.CompiledSummary
}

// NewFlat wraps a flat summary as an artifact tagged with the producing
// algorithm's canonical name.
func NewFlat(algo string, s *flat.Summary) *Flat {
	return &Flat{algo: algo, Summary: s}
}

// Algorithm returns the producing algorithm's canonical name.
func (a *Flat) Algorithm() string { return a.algo }

// Cost returns the flat encoding cost |P| + |C+| + |C-| + |H*|
// (Eq. (11)).
func (a *Flat) Cost() int64 { return a.Summary.Cost() }

// Decode reconstructs the input graph exactly.
func (a *Flat) Decode() *graph.Graph { return a.Summary.Decode() }

// Queryable converts the flat summary to the equivalent hierarchical
// model (height-1 trees) and compiles it into the CSR query engine,
// once; the compiled form is cached and shared by later calls. The
// conversion preserves the encoding cost and the represented graph, so
// a baseline's artifact serves queries exactly like a SLUGGER one.
func (a *Flat) Queryable() (*model.CompiledSummary, error) {
	a.compileOnce.Do(func() { a.compiled = flatToModel(a.Summary).Compile() })
	return a.compiled, nil
}

// WriteTo serializes the artifact through the versioned envelope.
func (a *Flat) WriteTo(w io.Writer) (int64, error) {
	return writeEnvelope(w, kindFlat, a.algo, a.Summary.WriteTo)
}

// writeEnvelope emits the self-describing header, then the payload.
func writeEnvelope(w io.Writer, kind byte, algo string, payload func(io.Writer) (int64, error)) (int64, error) {
	if len(algo) > maxAlgoNameLen {
		return 0, fmt.Errorf("slug: algorithm name %q too long", algo)
	}
	var head []byte
	head = append(head, envelopeMagic...)
	head = append(head, envelopeVersion, kind)
	head = binary.AppendUvarint(head, uint64(len(algo)))
	head = append(head, algo...)
	n, err := w.Write(head)
	count := int64(n)
	if err != nil {
		return count, err
	}
	pn, err := payload(w)
	return count + pn, err
}

// ReadFrom deserializes an artifact written by any Artifact's WriteTo.
// The envelope header restores the producing algorithm and model kind;
// raw hierarchical model streams (legacy "SLGR" files) are accepted and
// tagged as slugger output, and v2 zero-copy compiled streams ("SLGC",
// from SaveCompiled) load heap-backed with the full checksum verified —
// ready to serve with no recompilation. Corrupt input yields an error,
// never a silently wrong artifact.
func ReadFrom(r io.Reader) (Artifact, error) {
	br := bufio.NewReader(r)
	peek, err := br.Peek(len(envelopeMagic))
	if err != nil {
		return nil, fmt.Errorf("slug: reading artifact magic: %w", err)
	}
	if string(peek) == compiledMagic {
		return readMappedFrom(br)
	}
	if string(peek) == legacyModelMagic {
		s, err := model.ReadFrom(br)
		if err != nil {
			return nil, err
		}
		return NewHierarchical("slugger", s), nil
	}
	if string(peek) == shardedMagic {
		return nil, ErrShardedArtifact
	}
	if string(peek) != envelopeMagic {
		return nil, fmt.Errorf("slug: bad artifact magic %q", peek)
	}
	br.Discard(len(envelopeMagic))
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("slug: reading envelope version: %w", err)
	}
	if ver != envelopeVersion {
		return nil, fmt.Errorf("slug: unsupported envelope version %d", ver)
	}
	kind, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("slug: reading artifact kind: %w", err)
	}
	algoLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("slug: reading algorithm name length: %w", err)
	}
	if algoLen > maxAlgoNameLen {
		return nil, fmt.Errorf("slug: implausible algorithm name length %d", algoLen)
	}
	algo := make([]byte, algoLen)
	if _, err := io.ReadFull(br, algo); err != nil {
		return nil, fmt.Errorf("slug: reading algorithm name: %w", err)
	}
	switch kind {
	case kindHierarchical:
		s, err := model.ReadFrom(br)
		if err != nil {
			return nil, err
		}
		return NewHierarchical(string(algo), s), nil
	case kindFlat:
		s, err := flat.ReadFrom(br)
		if err != nil {
			return nil, err
		}
		return NewFlat(string(algo), s), nil
	default:
		return nil, fmt.Errorf("slug: unknown artifact kind %d", kind)
	}
}

// Save writes an artifact (sharded or not: anything serializing
// through WriteTo, such as an Artifact or a *Sharded) to a file.
// The write is crash-safe: the bytes land in a temporary file in the
// same directory, are fsynced, and are renamed over the target — the
// same discipline as WAL checkpoints — so a crash mid-save never
// leaves a torn artifact at path (the old file, if any, survives
// intact until the rename commits).
func Save(path string, a io.WriterTo) error {
	return atomicWrite(path, a.WriteTo)
}

// atomicWrite commits write's output to path via tmp + fsync + rename +
// directory fsync. On any failure the temporary file is removed and the
// previous contents of path are untouched.
func atomicWrite(path string, write func(io.Writer) (int64, error)) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		err = errors.Join(err, f.Close())
		os.Remove(tmp)
		return err
	}
	if _, err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the rename itself durable: fsync the directory entry. Failure
	// here is reported (the data is safe, but the commit may not survive
	// power loss until the OS flushes the directory).
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Load reads an artifact from a file written by Save (or by the legacy
// slugger -save model format, or a v2 compiled file from SaveCompiled —
// the magic dispatches).
func Load(path string) (Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //slugvet:ok syncerr (read-only descriptor; close failure cannot corrupt data already read)
	return ReadFrom(f)
}

// Validate checks that the artifact decodes exactly to g, reporting
// the first discrepancy found (a concrete missing or extra edge) —
// more useful than a boolean when debugging a losslessness regression.
func Validate(a Artifact, g *graph.Graph) error {
	if h, ok := a.(*Hierarchical); ok {
		// The hierarchical model's validator names the offending edge
		// without materializing the decoded graph.
		return h.Summary.Validate(g)
	}
	return compareDecoded(a.Decode(), g)
}

// compareDecoded checks a decoded graph against the input edge for
// edge, naming the first discrepancy.
func compareDecoded(dec, g *graph.Graph) error {
	if dec.NumNodes() != g.NumNodes() {
		return fmt.Errorf("slug: decoded graph has %d nodes, input has %d", dec.NumNodes(), g.NumNodes())
	}
	var firstErr error
	g.ForEachEdge(func(u, v int32) {
		if firstErr == nil && !dec.HasEdge(u, v) {
			firstErr = fmt.Errorf("slug: edge (%d,%d) of the input is missing from the decoded graph", u, v)
		}
	})
	if firstErr != nil {
		return firstErr
	}
	if dec.NumEdges() != g.NumEdges() {
		dec.ForEachEdge(func(u, v int32) {
			if firstErr == nil && !g.HasEdge(u, v) {
				firstErr = fmt.Errorf("slug: decoded graph has extra edge (%d,%d)", u, v)
			}
		})
		if firstErr == nil {
			firstErr = fmt.Errorf("slug: decoded graph has %d edges, input has %d", dec.NumEdges(), g.NumEdges())
		}
		return firstErr
	}
	return nil
}

// flatToModel converts a flat summary into the equivalent hierarchical
// model: every non-singleton supernode becomes a height-1 tree,
// superedges become p-edges between the corresponding supernodes, and
// corrections become signed edges between leaves. Net per-pair counts
// are preserved, so the model represents the same graph, and the
// hierarchical cost |P+| + |P-| + |H| equals the flat cost (Eq. (11)).
func flatToModel(f *flat.Summary) *model.Summary {
	n := f.N
	parent := make([]int32, n, n+len(f.Groups))
	for i := range parent {
		parent[i] = -1
	}
	// super[gi] is the model supernode standing for group gi: a fresh
	// internal node for groups of two or more, the lone member for
	// singletons, -1 for empty groups (which encode nothing).
	super := make([]int32, len(f.Groups))
	next := int32(n)
	for gi, members := range f.Groups {
		switch {
		case len(members) >= 2:
			super[gi] = next
			parent = append(parent, -1)
			for _, v := range members {
				parent[v] = next
			}
			next++
		case len(members) == 1:
			super[gi] = members[0]
		default:
			super[gi] = -1
		}
	}
	edges := make([]model.Edge, 0, len(f.P)+len(f.CPlus)+len(f.CMinus))
	add := func(a, b int32, sign int8) {
		if a > b {
			a, b = b, a
		}
		edges = append(edges, model.Edge{A: a, B: b, Sign: sign})
	}
	for _, pe := range f.P {
		a, b := super[pe[0]], super[pe[1]]
		if a < 0 || b < 0 {
			continue // superedge on an empty group covers zero pairs
		}
		add(a, b, 1)
	}
	for _, e := range f.CPlus {
		add(e[0], e[1], 1)
	}
	for _, e := range f.CMinus {
		add(e[0], e[1], -1)
	}
	return model.New(n, parent, edges)
}
