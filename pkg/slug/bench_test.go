package slug_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/pkg/slug"
)

// benchGraph is shared by the overhead pair below; both run the exact
// same SLUGGER configuration, so any ns/op gap is the unified API's
// wrapper cost (option resolution + artifact allocation), which must
// stay within noise.
func benchGraph() *graph.Graph {
	return graph.Caveman(12, 12, 24, 7)
}

// BenchmarkDirectSlugger measures calling the construction core
// directly — the pre-API baseline.
func BenchmarkDirectSlugger(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, _ := core.Summarize(g, core.Config{T: 20, Seed: 1})
		if sum.Cost() <= 0 {
			b.Fatal("bad cost")
		}
	}
}

// BenchmarkAPISlugger measures the identical build through
// slug.Get("slugger").Summarize.
func BenchmarkAPISlugger(b *testing.B) {
	g := benchGraph()
	s := slug.Get("slugger")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		art, err := s.Summarize(ctx, g, slug.WithIterations(20), slug.WithSeed(1))
		if err != nil || art.Cost() <= 0 {
			b.Fatal("bad artifact")
		}
	}
}
