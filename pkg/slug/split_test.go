package slug

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

func splitFixture(t *testing.T) (*Sharded, *graph.Graph) {
	t.Helper()
	g := graph.ErdosRenyi(150, 600, 21)
	sh, err := SummarizeSharded(context.Background(), g, 3, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	return sh, g
}

func TestSplitRoundTrip(t *testing.T) {
	for _, format := range []string{"v1", "v2"} {
		t.Run(format, func(t *testing.T) {
			sh, g := splitFixture(t)
			dir := t.TempDir()
			m, err := sh.Split(dir, format)
			if err != nil {
				t.Fatal(err)
			}
			if m.NumShards() != 3 || m.Nodes != g.NumNodes() || m.Epoch != sh.Epoch() {
				t.Fatalf("manifest = %+v, want 3 shards over %d nodes, epoch %s", m, g.NumNodes(), sh.Epoch())
			}

			loaded, err := LoadManifest(filepath.Join(dir, ManifestFilename))
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Epoch != sh.Epoch() {
				t.Fatalf("loaded epoch %s != artifact epoch %s", loaded.Epoch, sh.Epoch())
			}

			// Every shard opens, verifies, and decodes to the same subgraph
			// the in-memory artifact holds.
			for s := 0; s < loaded.NumShards(); s++ {
				art, err := loaded.OpenShard(dir, s)
				if err != nil {
					t.Fatalf("shard %d: %v", s, err)
				}
				if art.Cost() != sh.Shards[s].Cost() {
					t.Fatalf("shard %d cost %d != %d", s, art.Cost(), sh.Shards[s].Cost())
				}
				if !graph.Equal(art.Decode(), sh.Shards[s].Decode()) {
					t.Fatalf("shard %d decodes differently after round-trip", s)
				}
			}

			// Reassembled from the split pieces, the federation decodes the
			// whole input.
			shards := make([]Artifact, loaded.NumShards())
			gids := make([][]int32, loaded.NumShards())
			for s := range shards {
				art, err := loaded.OpenShard(dir, s)
				if err != nil {
					t.Fatal(err)
				}
				shards[s] = art
				gids[s] = sh.GlobalID[s]
			}
			re := NewSharded(loaded.Algorithm, shards, gids, loaded.Boundary)
			if !graph.Equal(re.Decode(), g) {
				t.Fatal("reassembled federation does not decode to the input")
			}
			if re.Epoch() != sh.Epoch() {
				t.Fatalf("reassembled epoch %s != original %s", re.Epoch(), sh.Epoch())
			}
		})
	}
}

func TestSplitRefusesTamper(t *testing.T) {
	sh, _ := splitFixture(t)
	dir := t.TempDir()
	m, err := sh.Split(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}

	// Corrupting one shard file byte fails its digest check.
	path := filepath.Join(dir, m.Shards[1].File)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenShard(dir, 1); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("tampered shard opened: %v", err)
	}
	// Untouched shards still open.
	if _, err := m.OpenShard(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenShard(dir, 5); err == nil {
		t.Fatal("out-of-range shard opened")
	}

	// A hand-edited manifest (different epoch than its contents imply) is
	// rejected at load.
	mpath := filepath.Join(dir, ManifestFilename)
	doc, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	forged := strings.Replace(string(doc), m.Epoch[:8], "00000000", 1)
	if forged == string(doc) {
		t.Fatal("could not forge epoch in manifest")
	}
	if err := os.WriteFile(mpath, []byte(forged), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(mpath); err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("forged manifest loaded: %v", err)
	}
}

func TestSplitRejectsUnknownFormat(t *testing.T) {
	sh, _ := splitFixture(t)
	if _, err := sh.Split(t.TempDir(), "v3"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestEpochSemantics(t *testing.T) {
	sh, g := splitFixture(t)

	// Epoch is a pure function of content: rebuilding the same graph the
	// same way reproduces it; changing the build does not.
	sh2, err := SummarizeSharded(context.Background(), g, 3, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if sh.Epoch() != sh2.Epoch() {
		t.Fatal("identical builds disagree on epoch")
	}
	sh4, err := SummarizeSharded(context.Background(), g, 4, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if sh.Epoch() == sh4.Epoch() {
		t.Fatal("different shard counts share an epoch")
	}

	// Format-independence: v1 and v2 exports of one build carry one epoch.
	d1, d2 := t.TempDir(), t.TempDir()
	m1, err := sh.Split(d1, "v1")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := sh.Split(d2, "v2")
	if err != nil {
		t.Fatal(err)
	}
	if m1.Epoch != m2.Epoch {
		t.Fatal("v1 and v2 exports of one build disagree on epoch")
	}

	// The compiled engine's version derives from the epoch, nonzero.
	sc, err := sh.Queryable()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Version() != EpochVersion(sh.Epoch()) || sc.Version() == 0 {
		t.Fatalf("compiled version %d, want nonzero EpochVersion %d", sc.Version(), EpochVersion(sh.Epoch()))
	}
	if EpochVersion(sh.Epoch()) == EpochVersion(sh4.Epoch()) {
		t.Fatal("distinct epochs collide in EpochVersion")
	}
}
