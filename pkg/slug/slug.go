// Package slug is the unified public API for graph summarization: one
// stable way to build, persist, load, decode and serve the output of
// every summarization algorithm in this repository — SLUGGER itself and
// the four baselines of the paper's evaluation (SWeG, MoSSo,
// Randomized, SAGS).
//
// The three core concepts:
//
//   - A [Summarizer] turns a graph into an [Artifact]. Obtain one from
//     the registry with [Get] (or register your own with [Register]);
//     tune a run with functional options such as [WithIterations] or
//     [WithSeed]; cancel a long build through the context.
//   - An [Artifact] is a finished summary, independent of the model the
//     algorithm produced (hierarchical for SLUGGER, flat for the
//     baselines): it reports its encoding cost, decodes losslessly back
//     to the input graph, serializes through a versioned self-describing
//     envelope ([ReadFrom] restores it, algorithm tag included), and
//     compiles into the read-optimized CSR query engine for serving.
//   - [Event]s report build progress through [WithProgress].
//
// A complete round trip:
//
//	art, err := slug.Get("sweg").Summarize(ctx, g,
//		slug.WithIterations(20), slug.WithSeed(1))
//	if err != nil { ... }
//	slug.Save("out.slga", art)
//	art2, _ := slug.Load("out.slga")   // algorithm tag survives
//	cs, _ := art2.Queryable()          // serve it: cs.NeighborsOf(v), ...
//
// For large graphs the sharded path runs the same pipeline
// partition-parallel: [SummarizeSharded] cuts the graph into k shards,
// summarizes them concurrently and returns a [*Sharded] artifact whose
// Queryable federates per-shard compiled engines behind the global id
// space (see the package-level docs in sharded.go).
package slug

import (
	"context"
	"io"

	"repro/internal/graph"
	"repro/internal/model"
)

// Summarizer is one summarization algorithm behind the unified API.
//
// Summarize must honor ctx: when the context is cancelled mid-build the
// call returns promptly with a nil Artifact and ctx.Err(), without
// leaking goroutines. Implementations must treat unknown options as
// inapplicable (ignore them) rather than failing, so one option set can
// drive every algorithm.
type Summarizer interface {
	// Name returns the canonical registry name (lowercase, e.g.
	// "slugger", "sweg").
	Name() string
	// Summarize builds a summary of g under the given options.
	Summarize(ctx context.Context, g *graph.Graph, opts ...Option) (Artifact, error)
}

// Artifact is a finished summary: the first-class output of every
// Summarizer, unifying what hierarchical (SLUGGER) and flat (baseline)
// models can do.
type Artifact interface {
	// Algorithm returns the canonical name of the producing algorithm,
	// preserved across serialization.
	Algorithm() string
	// Cost returns the encoding cost of the summary (Eq. (1) for
	// hierarchical models, Eq. (11) for flat ones).
	Cost() int64
	// Decode reconstructs the input graph exactly.
	Decode() *graph.Graph
	// WriterTo serializes the artifact through the versioned envelope
	// understood by ReadFrom; the header records the producing
	// algorithm and model kind.
	io.WriterTo
	// Queryable compiles the artifact into the concurrent CSR query
	// engine (neighbors, edge existence, graph algorithms on the
	// summary). The compiled form is built once and cached; flat
	// artifacts are first converted to the equivalent hierarchical
	// model.
	Queryable() (*model.CompiledSummary, error)
}

// Stage identifies what part of a build an Event reports on.
type Stage string

const (
	// StageIteration reports progress within an algorithm's main loop:
	// merging iterations (SLUGGER, SWeG), streamed-edge chunks (MoSSo)
	// or LSH bands (SAGS).
	StageIteration Stage = "iteration"
	// StageDone is the final event of a successful build.
	StageDone Stage = "done"
)

// CostUnknown marks Event.Cost when the algorithm cannot report its
// current encoding cost cheaply mid-build.
const CostUnknown int64 = -1

// Event is one progress report delivered through WithProgress. Events
// are delivered synchronously from the building goroutine, in order:
// StageIteration events with strictly increasing Step, then exactly one
// StageDone event (cancelled builds end without a StageDone).
type Event struct {
	Algorithm string // canonical algorithm name
	Stage     Stage
	Step      int   // 1-based progress counter within the stage
	Total     int   // total steps when known, else 0
	Cost      int64 // current encoding cost, or CostUnknown
}
