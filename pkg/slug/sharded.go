package slug

// Sharded summarization: the partition-parallel face of the public
// API. SummarizeSharded cuts the input into k shards (internal/graph's
// deterministic edge-cut partitioner), runs the chosen registered
// algorithm on every shard concurrently under one shared worker
// budget, and returns a *Sharded artifact — per-shard summaries plus a
// boundary-edge sidecar — that decodes losslessly, serializes through
// a versioned "SLGS" envelope embedding ordinary per-shard "SLGA"
// payloads, and compiles into the federated query engine
// (model.ShardedCompiled) behind the same read surface the HTTP server
// consumes.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/model"
)

// Sharded envelope:
//
//	magic "SLGS" | version u8 | algoLen uvarint | algo bytes
//	n uvarint | k uvarint
//	k shards: localN uvarint | globalID (delta-encoded uvarints)
//	          payloadLen uvarint | payload ("SLGA" artifact bytes)
//	boundaryCount uvarint | boundary edges (u uvarint, v uvarint; u < v,
//	                        lexicographically sorted)
//
// Each embedded payload is exactly what the shard artifact's own
// WriteTo produces, so a k=1 sharded file carries the byte-identical
// "SLGA" stream of the unsharded path.
const (
	shardedMagic   = "SLGS"
	shardedVersion = 1
)

// ErrShardedArtifact is returned by ReadFrom/Load when the stream holds
// a sharded envelope: load it with ReadShardedFrom/LoadSharded instead.
var ErrShardedArtifact = errors.New("slug: file holds a sharded artifact; load it with LoadSharded")

// Sharded is a finished sharded summary: one Artifact per shard (in
// shard-local vertex ids) plus the boundary edges between shards in
// global ids. It mirrors the Artifact surface — Algorithm, Cost,
// Decode, WriteTo — and compiles into the federated query engine via
// Queryable.
type Sharded struct {
	algo string
	n    int
	// Shards[s] is shard s's artifact over local ids 0..len(GlobalID[s])-1.
	Shards []Artifact
	// GlobalID[s][l] is the global id of shard s's local vertex l
	// (strictly ascending per shard, a bijection onto 0..n-1 overall).
	GlobalID [][]int32
	// Boundary holds the cross-shard edges {u,v}, u < v, sorted
	// lexicographically, in global ids.
	Boundary [][2]int32

	compileOnce sync.Once
	compiled    *model.ShardedCompiled
	compileErr  error
}

// NewSharded assembles a sharded artifact from per-shard artifacts, id
// maps and a boundary sidecar (all invariants are re-checked when the
// artifact is compiled or serialized). Most callers want
// SummarizeSharded instead.
func NewSharded(algo string, shards []Artifact, globalID [][]int32, boundary [][2]int32) *Sharded {
	n := 0
	for _, ids := range globalID {
		n += len(ids)
	}
	return &Sharded{algo: algo, n: n, Shards: shards, GlobalID: globalID, Boundary: boundary}
}

// Algorithm returns the canonical name of the per-shard algorithm.
func (a *Sharded) Algorithm() string { return a.algo }

// NumNodes returns the total number of vertices across shards.
func (a *Sharded) NumNodes() int { return a.n }

// NumShards returns the number of shards.
func (a *Sharded) NumShards() int { return len(a.Shards) }

// Cost returns the sharded encoding cost: the sum of the per-shard
// encoding costs plus one edge per boundary entry (the sidecar stores
// cross-shard edges uncompressed — the price of shard independence).
func (a *Sharded) Cost() int64 {
	total := int64(len(a.Boundary))
	for _, s := range a.Shards {
		total += s.Cost()
	}
	return total
}

// Decode reconstructs the input graph exactly: every shard's decoded
// subgraph translated to global ids, plus the boundary edges.
func (a *Sharded) Decode() *graph.Graph {
	b := graph.NewBuilder(a.n)
	for s, art := range a.Shards {
		gid := a.GlobalID[s]
		art.Decode().ForEachEdge(func(u, v int32) { b.AddEdge(gid[u], gid[v]) })
	}
	for _, e := range a.Boundary {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Validate checks that the artifact decodes exactly to g, reporting the
// first discrepancy found.
func (a *Sharded) Validate(g *graph.Graph) error {
	return compareDecoded(a.Decode(), g)
}

// Queryable compiles every shard into the CSR query engine and
// federates them (with the boundary sidecar) behind the global id
// space, once; the compiled form is cached and shared by later calls.
func (a *Sharded) Queryable() (*model.ShardedCompiled, error) {
	a.compileOnce.Do(func() {
		shards := make([]*model.CompiledSummary, len(a.Shards))
		for s, art := range a.Shards {
			cs, err := art.Queryable()
			if err != nil {
				a.compileErr = fmt.Errorf("slug: compiling shard %d: %w", s, err)
				return
			}
			shards[s] = cs
		}
		a.compiled, a.compileErr = model.NewShardedCompiled(shards, a.GlobalID, a.Boundary)
		if a.compileErr == nil {
			// Stamp the content version derived from the federation epoch,
			// so the in-process engine and a network federation of the same
			// build report the same X-Summary-Version.
			a.compiled.SetVersion(EpochVersion(a.Epoch()))
		}
	})
	return a.compiled, a.compileErr
}

// WriteTo serializes the artifact through the versioned sharded
// envelope. Each shard's payload is the byte stream its own WriteTo
// produces, so shard payloads round-trip through the ordinary artifact
// reader.
func (a *Sharded) WriteTo(w io.Writer) (int64, error) {
	if len(a.algo) > maxAlgoNameLen {
		return 0, fmt.Errorf("slug: algorithm name %q too long", a.algo)
	}
	if len(a.Shards) != len(a.GlobalID) {
		return 0, fmt.Errorf("slug: %d shards but %d id maps", len(a.Shards), len(a.GlobalID))
	}
	var head []byte
	head = append(head, shardedMagic...)
	head = append(head, shardedVersion)
	head = binary.AppendUvarint(head, uint64(len(a.algo)))
	head = append(head, a.algo...)
	head = binary.AppendUvarint(head, uint64(a.n))
	head = binary.AppendUvarint(head, uint64(len(a.Shards)))
	written := int64(0)
	n, err := w.Write(head)
	written += int64(n)
	if err != nil {
		return written, err
	}
	var buf bytes.Buffer
	var scratch []byte
	for s, art := range a.Shards {
		scratch = scratch[:0]
		ids := a.GlobalID[s]
		scratch = binary.AppendUvarint(scratch, uint64(len(ids)))
		prev := int64(-1)
		for _, v := range ids {
			scratch = binary.AppendUvarint(scratch, uint64(int64(v)-prev-1))
			prev = int64(v)
		}
		buf.Reset()
		if _, err := art.WriteTo(&buf); err != nil {
			return written, fmt.Errorf("slug: serializing shard %d: %w", s, err)
		}
		scratch = binary.AppendUvarint(scratch, uint64(buf.Len()))
		n, err := w.Write(scratch)
		written += int64(n)
		if err != nil {
			return written, err
		}
		pn, err := io.Copy(w, &buf)
		written += pn
		if err != nil {
			return written, err
		}
	}
	scratch = scratch[:0]
	scratch = binary.AppendUvarint(scratch, uint64(len(a.Boundary)))
	for _, e := range a.Boundary {
		scratch = binary.AppendUvarint(scratch, uint64(e[0]))
		scratch = binary.AppendUvarint(scratch, uint64(e[1]))
	}
	n, err = w.Write(scratch)
	written += int64(n)
	return written, err
}

// ReadShardedFrom deserializes a sharded artifact written by WriteTo.
// Corrupt input yields an error, never a silently wrong artifact.
func ReadShardedFrom(r io.Reader) (*Sharded, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(shardedMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("slug: reading sharded magic: %w", err)
	}
	if string(magic) != shardedMagic {
		return nil, fmt.Errorf("slug: bad sharded artifact magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("slug: reading sharded envelope version: %w", err)
	}
	if ver != shardedVersion {
		return nil, fmt.Errorf("slug: unsupported sharded envelope version %d", ver)
	}
	algoLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("slug: reading algorithm name length: %w", err)
	}
	if algoLen > maxAlgoNameLen {
		return nil, fmt.Errorf("slug: implausible algorithm name length %d", algoLen)
	}
	algo := make([]byte, algoLen)
	if _, err := io.ReadFull(br, algo); err != nil {
		return nil, fmt.Errorf("slug: reading algorithm name: %w", err)
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("slug: reading vertex count: %w", err)
	}
	if n64 >= 1<<31 {
		return nil, fmt.Errorf("slug: implausible vertex count %d", n64)
	}
	n := int(n64)
	k64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("slug: reading shard count: %w", err)
	}
	if k64 < 1 || (k64 > uint64(n) && !(n == 0 && k64 == 1)) {
		return nil, fmt.Errorf("slug: implausible shard count %d for %d vertices", k64, n)
	}
	k := int(k64)

	a := &Sharded{algo: string(algo), n: n, Shards: make([]Artifact, 0, k), GlobalID: make([][]int32, 0, k)}
	assigned := make([]bool, n)
	var payload bytes.Buffer
	for s := 0; s < k; s++ {
		localN, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("slug: reading shard %d size: %w", s, err)
		}
		if localN > uint64(n) {
			return nil, fmt.Errorf("slug: shard %d claims %d of %d vertices", s, localN, n)
		}
		ids := make([]int32, localN)
		prev := int64(-1)
		for l := range ids {
			gap, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("slug: reading shard %d id map: %w", s, err)
			}
			v := prev + 1 + int64(gap)
			if v >= int64(n) {
				return nil, fmt.Errorf("slug: shard %d maps local %d beyond vertex count", s, l)
			}
			if assigned[v] {
				return nil, fmt.Errorf("slug: global vertex %d owned by two shards", v)
			}
			assigned[v] = true
			ids[l] = int32(v)
			prev = v
		}
		payloadLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("slug: reading shard %d payload length: %w", s, err)
		}
		// CopyN into a growing buffer: a corrupt giant length fails at
		// EOF instead of provoking a giant up-front allocation.
		payload.Reset()
		if _, err := io.CopyN(&payload, br, int64(payloadLen)); err != nil {
			return nil, fmt.Errorf("slug: reading shard %d payload: %w", s, err)
		}
		art, err := ReadFrom(bytes.NewReader(payload.Bytes()))
		if err != nil {
			return nil, fmt.Errorf("slug: decoding shard %d payload: %w", s, err)
		}
		if got := artifactNodes(art); got >= 0 && got != int(localN) {
			return nil, fmt.Errorf("slug: shard %d payload has %d vertices, id map has %d", s, got, localN)
		}
		a.Shards = append(a.Shards, art)
		a.GlobalID = append(a.GlobalID, ids)
	}
	for v, ok := range assigned {
		if !ok {
			return nil, fmt.Errorf("slug: global vertex %d unassigned", v)
		}
	}
	bc, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("slug: reading boundary count: %w", err)
	}
	// Plausibility cap only: a simple graph has fewer than n^2/2 edges.
	// A corrupt count below the cap is still caught — the decode loop
	// below hits EOF (or a malformed pair) before trusting it.
	if bc > uint64(n)*uint64(n) {
		return nil, fmt.Errorf("slug: implausible boundary edge count %d", bc)
	}
	for i := uint64(0); i < bc; i++ {
		u, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("slug: reading boundary edge %d: %w", i, err)
		}
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("slug: reading boundary edge %d: %w", i, err)
		}
		if u >= v || v >= uint64(n) {
			return nil, fmt.Errorf("slug: boundary edge %d (%d,%d) malformed", i, u, v)
		}
		a.Boundary = append(a.Boundary, [2]int32{int32(u), int32(v)})
	}
	return a, nil
}

// artifactNodes returns the vertex count an artifact was built over, or
// -1 when the concrete type doesn't expose it cheaply.
func artifactNodes(a Artifact) int {
	switch t := a.(type) {
	case *Hierarchical:
		return t.Summary.N
	case *Flat:
		return t.Summary.N
	case *Mapped:
		return t.cs.NumNodes()
	}
	return -1
}

// LoadSharded reads a sharded artifact from a file written by Save.
func LoadSharded(path string) (*Sharded, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //slugvet:ok syncerr (read-only descriptor; close failure cannot corrupt data already read)
	return ReadShardedFrom(f)
}

// SummarizeSharded partitions g into k shards (deterministic edge-cut,
// see graph.PartitionGraph) and summarizes every shard with the
// algorithm chosen by WithAlgorithm (default "slugger"), returning the
// per-shard artifacts plus the boundary-edge sidecar as one *Sharded
// artifact. The result is lossless — Decode reproduces g exactly — and
// deterministic: a fixed graph, shard count, algorithm and seed always
// produce the same artifact bytes, whatever the worker budget. With
// k = 1 the single shard's artifact is byte-identical to the unsharded
// Summarize path under the same options.
//
// Shards build concurrently under one worker budget: WithWorkers
// bounds the total parallelism (shard-level concurrency times each
// shard's merge-phase pool; default GOMAXPROCS). Progress events
// report completed shards: StageIteration with Step = shards finished
// and Total = k, then one StageDone carrying the final cost.
// Cancelling ctx stops all in-flight shard builds promptly.
func SummarizeSharded(ctx context.Context, g *graph.Graph, k int, opts ...Option) (*Sharded, error) {
	cfg := resolve(opts)
	algo := cfg.algorithm
	if algo == "" {
		algo = "slugger"
	}
	summarizer, ok := Lookup(algo)
	if !ok {
		return nil, fmt.Errorf("slug: unknown algorithm %q (have %v)", algo, Algorithms())
	}
	part, err := graph.PartitionGraph(g, k)
	if err != nil {
		return nil, err
	}

	budget := cfg.workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	conc := min(k, budget)
	perShard := budget / conc

	// Per-shard options: the caller's, then the split worker budget and
	// a silenced progress callback (shard completions are reported
	// below instead; appended options override earlier ones).
	shardOpts := make([]Option, 0, len(opts)+2)
	shardOpts = append(shardOpts, opts...)
	shardOpts = append(shardOpts, WithWorkers(perShard), WithProgress(nil))

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, conc)
		mu       sync.Mutex
		done     int
		firstErr error
	)
	results := make([]Artifact, k)
	for s := 0; s < k; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if cctx.Err() != nil {
				return
			}
			art, err := summarizer.Summarize(cctx, part.Subgraphs[s], shardOpts...)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("slug: summarizing shard %d: %w", s, err)
				}
				mu.Unlock()
				cancel()
				return
			}
			results[s] = art
			mu.Lock()
			done++
			cfg.emit(Event{Algorithm: algo, Stage: StageIteration, Step: done, Total: k, Cost: CostUnknown})
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		if err := ctx.Err(); err != nil {
			return nil, err // cancelled from outside: report the cause
		}
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sh := &Sharded{algo: algo, n: g.NumNodes(), Shards: results, GlobalID: part.GlobalID, Boundary: part.Boundary}
	cfg.emit(Event{Algorithm: algo, Stage: StageDone, Step: k, Total: k, Cost: sh.Cost()})
	return sh, nil
}
