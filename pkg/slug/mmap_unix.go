//go:build unix

package slug

import (
	"fmt"
	"os"
	"syscall"
)

// mmapBacked reports whether mapFile returns a true memory mapping on
// this platform (it affects only the Format label, never semantics).
const mmapBacked = true

// mapFile maps size bytes of f read-only. The returned release func
// unmaps; the mapping outlives f (the kernel keeps the pages backed by
// the file once mapped).
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 {
		return nil, nil, fmt.Errorf("file is empty")
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("file size %d exceeds the address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
