package slug

import "repro/internal/wal"

// Option tunes one Summarize call. Options not applicable to the
// chosen algorithm are ignored, so a single option set can drive every
// registered algorithm (e.g. from the experiment harness).
type Option func(*buildConfig)

// buildConfig is the resolved option set handed to algorithm adapters.
// Zero values mean "algorithm default".
type buildConfig struct {
	iterations  int // main-loop iterations T (slugger, sweg)
	heightBound int // hierarchy height bound Hb (slugger)
	seed        int64
	workers     int // merge-phase worker pool size (slugger)
	progress    func(Event)
	compaction  int    // updatable-artifact compaction threshold (NewUpdatable)
	algorithm   string // per-shard algorithm (SummarizeSharded)

	walDir    string // updatable-artifact WAL directory ("" = volatile)
	walPolicy wal.Policy
	walFS     wal.FS // fault-injection hook for tests (nil = the real one)
}

func resolve(opts []Option) buildConfig {
	var cfg buildConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// WithIterations sets the number of main-loop iterations T for the
// iterative algorithms (SLUGGER and SWeG; default 20, as in the paper).
// Other algorithms ignore it.
func WithIterations(t int) Option {
	return func(cfg *buildConfig) { cfg.iterations = t }
}

// WithHeightBound bounds the height of SLUGGER's hierarchy trees
// (0 = unbounded, the default). Flat algorithms ignore it.
func WithHeightBound(hb int) Option {
	return func(cfg *buildConfig) { cfg.heightBound = hb }
}

// WithSeed sets the seed driving all randomness; every algorithm is
// deterministic given a seed. The default seed is 0.
func WithSeed(seed int64) Option {
	return func(cfg *buildConfig) { cfg.seed = seed }
}

// WithWorkers sets the size of SLUGGER's merge-phase worker pool
// (default 1 = serial; any value produces byte-identical output). The
// serial baselines ignore it.
func WithWorkers(n int) Option {
	return func(cfg *buildConfig) { cfg.workers = n }
}

// WithCompactionThreshold sets, for updatable artifacts (NewUpdatable),
// the number of overlay corrections at which a background re-summarize
// is triggered and the fresh base swapped in (0, the default, disables
// auto-compaction: the overlay grows until Compact is called).
// Summarize calls ignore it.
func WithCompactionThreshold(n int) Option {
	return func(cfg *buildConfig) { cfg.compaction = n }
}

// WithAlgorithm selects, for sharded builds (SummarizeSharded), the
// registered algorithm run on every shard (default "slugger").
// Summarizer.Summarize calls ignore it — there the receiver is the
// algorithm.
func WithAlgorithm(name string) Option {
	return func(cfg *buildConfig) { cfg.algorithm = name }
}

// WithDurability gives an updatable artifact (NewUpdatable) a write-
// ahead log in dir: every acknowledged update batch is persisted before
// it becomes visible, compactions checkpoint the rebuilt base and
// retire replayed log segments, and reopening the same directory
// (NewUpdatable or OpenUpdatable) recovers the exact acknowledged
// state — see the Durability section of the package docs for the fsync
// policy tradeoffs. Summarize calls ignore it.
func WithDurability(dir string, policy SyncPolicy) Option {
	return func(cfg *buildConfig) {
		cfg.walDir = dir
		cfg.walPolicy = policy.p
	}
}

// withWALFS substitutes the filesystem under the write-ahead log, so
// tests can inject faults and crashes. Not part of the public API.
func withWALFS(fs wal.FS) Option {
	return func(cfg *buildConfig) { cfg.walFS = fs }
}

// WithProgress registers a callback receiving build progress Events.
// The callback runs synchronously on the building goroutine, so it may
// cancel the build's context to stop promptly; it must not block.
func WithProgress(fn func(Event)) Option {
	return func(cfg *buildConfig) { cfg.progress = fn }
}

// emit delivers an event if a progress callback is registered.
func (cfg *buildConfig) emit(ev Event) {
	if cfg.progress != nil {
		cfg.progress(ev)
	}
}
