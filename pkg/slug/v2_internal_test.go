package slug

// White-box check of the v2 checkpoint fast path: recovery must seed
// the live base straight from the checkpoint's compiled bytes — a
// *Mapped, not a re-decoded and recompiled envelope — while serving the
// exact acknowledged state.

import (
	"bytes"
	"testing"
)

func TestDurableCheckpointRecoversMapped(t *testing.T) {
	art := buildDurableTestArtifact(t)
	batches := durableTestBatches(durableTestGraph())
	dir := t.TempDir()

	up, err := NewUpdatable(art, append(durableTestOpts(), WithDurability(dir, SyncAlways()))...)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := up.ApplyUpdates(b); err != nil {
			t.Fatal(err)
		}
	}
	// Compact: the rebuilt base is checkpointed in the v2 layout.
	if err := up.Compact(); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := up.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	if err := up.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenUpdatable(dir, SyncAlways(), durableTestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()

	// The recovered base must be the checkpoint's mapped form: queryable
	// without recompiling.
	la, ok := re.(*liveArtifact)
	if !ok {
		t.Fatalf("OpenUpdatable returned %T", re)
	}
	m, ok := la.base.(*Mapped)
	if !ok {
		t.Fatalf("recovered base is %T, want *Mapped (v2 checkpoint fast path)", la.base)
	}
	if m.Format() != "v2-heap" {
		t.Fatalf("recovered base format %q, want v2-heap", m.Format())
	}

	// And it serves the exact acknowledged state.
	var got bytes.Buffer
	if _, err := re.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("recovered artifact diverges from pre-shutdown state: %d vs %d bytes", want.Len(), got.Len())
	}
}
