package slug

// White-box tests of the durable updatable path: these live inside the
// package so they can inject a fault filesystem under the WAL via the
// unexported withWALFS option. The acceptance bar is crash parity:
// killing the "process" at any filesystem operation and recovering must
// yield an artifact byte-identical to a never-crashed one that applied
// the same acknowledged batches.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/wal"
	"repro/internal/wal/faultfs"
)

func durableTestGraph() *graph.Graph { return graph.Caveman(5, 8, 10, 42) }

func durableTestOpts() []Option {
	return []Option{WithIterations(4), WithSeed(7)}
}

func buildDurableTestArtifact(t testing.TB) Artifact {
	t.Helper()
	art, err := Get("slugger").Summarize(context.Background(), durableTestGraph(), durableTestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	return art
}

// durableTestBatches is a deterministic mixed insert/delete stream over
// the test graph, chunked into batches (the WAL's unit of atomicity).
func durableTestBatches(g *graph.Graph) [][]model.EdgeUpdate {
	n := int32(g.NumNodes())
	rng := rand.New(rand.NewSource(11))
	const numBatches, perBatch = 8, 5
	batches := make([][]model.EdgeUpdate, 0, numBatches)
	for b := 0; b < numBatches; b++ {
		batch := make([]model.EdgeUpdate, 0, perBatch)
		for len(batch) < perBatch {
			u, v := rng.Int31n(n), rng.Int31n(n)
			if u == v {
				continue
			}
			batch = append(batch, model.EdgeUpdate{U: u, V: v, Delete: rng.Float64() < 0.4})
		}
		batches = append(batches, batch)
	}
	return batches
}

// referenceBytes serializes, for every batch-count prefix P, the
// artifact a never-crashed volatile updatable produces after applying
// exactly P batches. refs[P] is the ground truth recovery must match.
func referenceBytes(t *testing.T, art Artifact, batches [][]model.EdgeUpdate) [][]byte {
	t.Helper()
	refs := make([][]byte, len(batches)+1)
	for p := 0; p <= len(batches); p++ {
		up, err := NewUpdatable(art, durableTestOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches[:p] {
			if _, err := up.ApplyUpdates(b); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if _, err := up.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		refs[p] = buf.Bytes()
	}
	return refs
}

// TestArtifactSerializationStable: WriteTo → ReadFrom → WriteTo must be
// byte-identical. Crash parity leans on this — the checkpointed base is
// read back and reserialized on the recovered side.
func TestArtifactSerializationStable(t *testing.T) {
	art := buildDurableTestArtifact(t)
	var first bytes.Buffer
	if _, err := art.WriteTo(&first); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if _, err := back.WriteTo(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("artifact serialization is not round-trip stable")
	}
}

// TestDurableCleanRestart: close cleanly, reopen from the directory
// alone (OpenUpdatable), and get the exact same live graph and the
// exact same serialized artifact as the uninterrupted run.
func TestDurableCleanRestart(t *testing.T) {
	art := buildDurableTestArtifact(t)
	batches := durableTestBatches(durableTestGraph())
	refs := referenceBytes(t, art, batches)
	dir := t.TempDir()

	up, err := NewUpdatable(art, append(durableTestOpts(), WithDurability(dir, SyncAlways()))...)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range batches {
		if _, err := up.ApplyUpdates(b); err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			if err := up.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	ds := up.Durability()
	if !ds.Enabled || ds.CheckpointLSN == 0 {
		t.Fatalf("durability stats after compaction: %+v", ds)
	}
	// Batches that were pure no-ops never reached the log, so derive the
	// expected replay length from the log's own LSNs.
	wantReplay := int(ds.LastLSN - ds.CheckpointLSN)
	if err := up.Close(); err != nil {
		t.Fatal(err)
	}
	if err := up.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}

	re, err := OpenUpdatable(dir, SyncAlways(), durableTestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rds := re.Durability()
	if !rds.RecoveredCheckpoint {
		t.Fatal("reopen did not recover the checkpoint")
	}
	if rds.RecoveredRecords != wantReplay {
		t.Fatalf("reopen replayed %d batches, want %d", rds.RecoveredRecords, wantReplay)
	}
	var buf bytes.Buffer
	if _, err := re.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), refs[len(batches)]) {
		t.Fatal("recovered artifact differs from the never-crashed reference")
	}
}

// durableCrashWorkload opens a durable updatable over fs and applies
// the batches, compacting after the fourth; it stops at the first
// injected failure and returns how many batches were acknowledged
// (-1: the open itself died).
func durableCrashWorkload(dir string, fs wal.FS, art Artifact, batches [][]model.EdgeUpdate) int {
	opts := append(durableTestOpts(), WithDurability(dir, SyncAlways()), withWALFS(fs))
	up, err := NewUpdatable(art, opts...)
	if err != nil {
		return -1
	}
	defer up.Close()
	for i, b := range batches {
		if _, err := up.ApplyUpdates(b); err != nil {
			return i
		}
		if i == 3 {
			// Compact succeeds even when its checkpoint write dies (the
			// checkpoint is an optimization; the log still covers the
			// state), so don't stop the workload on its error.
			up.Compact()
		}
	}
	return len(batches)
}

// TestDurableCrashParityMatrix is the acceptance test of the PR: kill
// the process at every filesystem operation of an apply/compact
// workload — including torn final writes and full power loss — then
// recover from the directory and require the serialized artifact to be
// byte-identical to a never-crashed server that applied the same
// acknowledged batch stream (or that stream plus the one in-flight
// batch whose log record hit the disk before the ack).
func TestDurableCrashParityMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-point matrix is slow")
	}
	art := buildDurableTestArtifact(t)
	batches := durableTestBatches(durableTestGraph())
	refs := referenceBytes(t, art, batches)

	probe := faultfs.Wrap(wal.OSFS{})
	if acked := durableCrashWorkload(t.TempDir(), probe, art, batches); acked != len(batches) {
		t.Fatalf("unkilled workload acked %d batches, want %d", acked, len(batches))
	}
	totalOps := probe.Ops()
	if totalOps < 15 {
		t.Fatalf("workload performed only %d filesystem operations", totalOps)
	}

	variants := []struct {
		torn, volatile bool
	}{
		{false, false}, // clean kill
		{true, false},  // torn final write
		{true, true},   // power loss mid-fsync
	}
	for _, v := range variants {
		for killAt := 1; killAt <= totalOps; killAt++ {
			name := fmt.Sprintf("kill=%d,torn=%v,volatile=%v", killAt, v.torn, v.volatile)
			dir := t.TempDir()
			fs := faultfs.Wrap(wal.OSFS{})
			fs.SetVolatile(v.volatile)
			fs.KillAt(killAt, v.torn)
			acked := durableCrashWorkload(dir, fs, art, batches)

			// Recover with a clean filesystem, passing the seed artifact as
			// a fresh start would (a committed checkpoint overrides it).
			re, err := NewUpdatable(art, append(durableTestOpts(), WithDurability(dir, SyncAlways()))...)
			if err != nil {
				t.Fatalf("%s: recovery failed: %v", name, err)
			}
			var buf bytes.Buffer
			if _, err := re.WriteTo(&buf); err != nil {
				t.Fatalf("%s: serializing recovered artifact: %v", name, err)
			}

			// Acceptance: recovered state is the acked prefix, or the acked
			// prefix plus the batch whose append was cut between disk and
			// ack. Nothing else.
			floor := acked
			if floor < 0 {
				floor = 0
			}
			ok := bytes.Equal(buf.Bytes(), refs[floor])
			if !ok && floor+1 <= len(batches) {
				ok = bytes.Equal(buf.Bytes(), refs[floor+1])
			}
			if !ok {
				t.Fatalf("%s: recovered artifact matches no acceptable prefix (acked %d)", name, acked)
			}

			// The recovered artifact keeps accepting durable updates.
			if _, err := re.ApplyUpdates([]model.EdgeUpdate{{U: 0, V: 1}, {U: 0, V: 1, Delete: true}}); err != nil {
				t.Fatalf("%s: post-recovery update: %v", name, err)
			}
			if err := re.Close(); err != nil {
				t.Fatalf("%s: close after recovery: %v", name, err)
			}
		}
	}
}

// TestDurableAppendFailureRejectsBatch: when the log cannot persist a
// batch, ApplyUpdates must fail with model.ErrDurability and the batch
// must not be visible to readers — no ack, no state change.
func TestDurableAppendFailureRejectsBatch(t *testing.T) {
	art := buildDurableTestArtifact(t)
	fs := faultfs.Wrap(wal.OSFS{})
	up, err := NewUpdatable(art, append(durableTestOpts(),
		WithDurability(t.TempDir(), SyncAlways()), withWALFS(fs))...)
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	before := up.View().Version()
	fs.KillAt(fs.Ops()+1, false)
	_, err = up.ApplyUpdates([]model.EdgeUpdate{{U: 0, V: 1, Delete: true}})
	if err == nil {
		t.Fatal("update acknowledged while the log was failing")
	}
	if up.View().Version() != before {
		t.Fatal("failed durable append still published a snapshot")
	}
}

// TestOpenUpdatableEmptyDir: recovery from a directory that never saw a
// checkpoint must fail rather than serve an empty summary.
func TestOpenUpdatableEmptyDir(t *testing.T) {
	if _, err := OpenUpdatable(t.TempDir(), SyncAlways(), durableTestOpts()...); err == nil {
		t.Fatal("OpenUpdatable over an empty directory succeeded")
	}
}

// TestDurableCheckpointBoundsReplay: compaction must retire replayed
// log segments so recovery replays only the post-checkpoint suffix.
func TestDurableCheckpointBoundsReplay(t *testing.T) {
	art := buildDurableTestArtifact(t)
	batches := durableTestBatches(durableTestGraph())
	dir := t.TempDir()
	up, err := NewUpdatable(art, append(durableTestOpts(), WithDurability(dir, SyncAlways()))...)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := up.ApplyUpdates(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := up.Compact(); err != nil {
		t.Fatal(err)
	}
	ds := up.Durability()
	if ds.CheckpointLSN == 0 || ds.Checkpoints < 2 { // seed + compaction
		t.Fatalf("checkpoint not advanced by compaction: %+v", ds)
	}
	if err := up.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenUpdatable(dir, SyncAlways(), durableTestOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rds := re.Durability(); rds.RecoveredRecords != 0 {
		t.Fatalf("replayed %d batches after a full compaction, want 0", rds.RecoveredRecords)
	}
}
