package slug

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Summarizer)
)

// Register adds a Summarizer to the global registry under s.Name().
// It panics on an empty name or a duplicate registration; replacing an
// algorithm is a programming error, not a runtime configuration.
func Register(s Summarizer) {
	name := s.Name()
	if name == "" {
		panic("slug: Register with empty algorithm name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("slug: duplicate algorithm %q", name))
	}
	registry[name] = s
}

// Get returns the named Summarizer. Unknown names return a stub whose
// Summarize reports an "unknown algorithm" error, so calls chain
// naturally: slug.Get(name).Summarize(ctx, g, opts...). Use Lookup to
// distinguish registered algorithms up front.
func Get(name string) Summarizer {
	if s, ok := Lookup(name); ok {
		return s
	}
	return unknownSummarizer(name)
}

// Lookup returns the named Summarizer and whether it is registered.
func Lookup(name string) (Summarizer, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Algorithms returns the sorted names of all registered algorithms.
func Algorithms() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// unknownSummarizer is Get's stub for unregistered names.
type unknownSummarizer string

func (u unknownSummarizer) Name() string { return string(u) }

func (u unknownSummarizer) Summarize(context.Context, *graph.Graph, ...Option) (Artifact, error) {
	return nil, fmt.Errorf("slug: unknown algorithm %q (have %v)", string(u), Algorithms())
}
