package slug

// Updatable artifacts: the live-maintenance face of the public API.
// NewUpdatable wraps any finished Artifact in a model.Live — edge
// insertions and deletions land in a delta overlay on the compiled
// base without recompiling, readers stay lock-free via atomic snapshot
// swap, and once the overlay reaches WithCompactionThreshold a
// background re-summarize (with the artifact's own algorithm and the
// given build options) swaps in a fresh base.

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/wal"
)

// Updatable is an Artifact whose represented graph can change after the
// build: a living summary rather than a frozen snapshot. All Artifact
// methods observe the current live state. Queries against a consistent
// point-in-time view go through View (the Queryable of the Artifact
// interface returns only the compiled base, without overlay
// corrections).
type Updatable interface {
	Artifact
	// ApplyUpdates applies a batch of edge insertions/deletions to the
	// live graph and returns the number of effective updates (inserting
	// a present edge or deleting an absent one is a no-op). The vertex
	// set is fixed at build time; out-of-range endpoints reject the
	// batch.
	ApplyUpdates(ups []model.EdgeUpdate) (int, error)
	// View returns the current immutable snapshot for querying:
	// NeighborsOf, HasEdge, NeighborsBatch and Decode all see the live
	// graph. Lock-free; the snapshot stays consistent however long it
	// is held.
	View() *model.DeltaOverlay
	// Compact synchronously re-summarizes the live graph with the
	// artifact's algorithm and swaps in the fresh base, emptying the
	// overlay.
	Compact() error
	// Live exposes the underlying maintenance container (for serving
	// front-ends that need stats and snapshots).
	Live() *model.Live
	// Close releases the resources behind the artifact — for a durable
	// one (WithDurability) it flushes and closes the write-ahead log, so
	// updates acknowledged under an interval fsync policy are on disk
	// before Close returns. The artifact must not be updated afterwards;
	// views already held stay valid. Idempotent.
	Close() error
	// Durability reports the persistence state: whether a write-ahead
	// log is attached, what it recovered at open, and its counters.
	Durability() DurabilityStats
}

// liveArtifact implements Updatable over a model.Live whose rebuild
// re-summarizes through the algorithm registry.
type liveArtifact struct {
	algo string
	live *model.Live

	mu      sync.Mutex
	base    Artifact // artifact of the served compiled base
	pending Artifact // rebuilt artifact staged until its swap commits

	// Durable state (nil log = volatile artifact).
	log         *wal.Log
	closed      bool
	recRecords  int  // records replayed at open
	recCkpt     bool // a checkpoint seeded the base at open
	recTrunc    bool // recovery truncated a torn tail
	ckptFails   uint64
	lastCkptErr error
}

// NewUpdatable makes an artifact's summary live: the result absorbs
// edge updates through a delta overlay and re-summarizes in the
// background once the overlay reaches WithCompactionThreshold (0
// disables auto-compaction). The options are also replayed on every
// compaction rebuild, so WithSeed, WithIterations etc. keep applying —
// given the same options, the same update stream always yields the
// same artifact. The producing algorithm must be registered (it is
// what compaction rebuilds with).
func NewUpdatable(art Artifact, opts ...Option) (Updatable, error) {
	cfg := resolve(opts)
	if cfg.walDir != "" {
		return openDurable(art, cfg, opts)
	}
	if art == nil {
		return nil, fmt.Errorf("slug: NewUpdatable needs an artifact (only WithDurability can recover one from disk)")
	}
	return newLiveArtifact(art, cfg, opts)
}

// newLiveArtifact builds the volatile core shared by the durable and
// non-durable paths: registry-checked rebuild wiring over a model.Live.
func newLiveArtifact(art Artifact, cfg buildConfig, opts []Option) (*liveArtifact, error) {
	if _, ok := Lookup(art.Algorithm()); !ok {
		return nil, fmt.Errorf("slug: cannot make %q artifact updatable: algorithm not registered (compaction needs it)", art.Algorithm())
	}
	cs, err := art.Queryable()
	if err != nil {
		return nil, err
	}
	la := &liveArtifact{algo: art.Algorithm(), base: art}
	l := model.NewLive(cs)
	l.SetCompactionThreshold(cfg.compaction)
	// The rebuilt artifact is only staged here: it becomes la.base in
	// the OnCompacted hook, atomically with the Live base swap, so a
	// failed compaction (or the window before the swap commits) never
	// leaves la.base describing a base that isn't being served.
	l.SetRebuild(func(g *graph.Graph) (*model.CompiledSummary, error) {
		fresh, err := Get(la.algo).Summarize(context.Background(), g, opts...)
		if err != nil {
			return nil, err
		}
		compiled, err := fresh.Queryable()
		if err != nil {
			return nil, err
		}
		la.mu.Lock()
		la.pending = fresh
		la.mu.Unlock()
		return compiled, nil
	})
	l.SetOnCompacted(func() {
		la.mu.Lock()
		if la.pending != nil {
			la.base = la.pending
			la.pending = nil
		}
		la.mu.Unlock()
	})
	la.live = l
	return la, nil
}

func (la *liveArtifact) Algorithm() string { return la.algo }

// Cost returns the live encoding cost: the compiled base's cost plus
// one correction edge per overlay entry (exactly what serializing the
// overlay as signed edges would add).
func (la *liveArtifact) Cost() int64 {
	la.mu.Lock()
	base := la.base
	la.mu.Unlock()
	return base.Cost() + int64(la.live.View().Len())
}

// Decode materializes the current live graph.
func (la *liveArtifact) Decode() *graph.Graph { return la.live.View().Decode() }

// Queryable returns the current compiled base — without overlay
// corrections. Live queries should go through View; this accessor
// exists to satisfy the Artifact interface (and equals View().Base()).
func (la *liveArtifact) Queryable() (*model.CompiledSummary, error) {
	return la.live.View().Base(), nil
}

// WriteTo serializes the live artifact. A non-empty overlay is first
// compacted (synchronously, waiting out any in-flight background
// compaction), so the written artifact is a self-contained summary of
// the live graph; with fixed options the bytes are a deterministic
// function of the build inputs and the update stream.
func (la *liveArtifact) WriteTo(w io.Writer) (int64, error) {
	if la.live.View().Len() > 0 {
		if err := la.live.Compact(); err != nil {
			return 0, fmt.Errorf("slug: compacting before serialization: %w", err)
		}
	} else {
		// Even an empty overlay may sit above a stale base artifact if
		// a background compaction is mid-swap; wait it out.
		la.live.Quiesce()
	}
	la.mu.Lock()
	base := la.base
	la.mu.Unlock()
	return base.WriteTo(w)
}

func (la *liveArtifact) ApplyUpdates(ups []model.EdgeUpdate) (int, error) {
	return la.live.ApplyUpdates(ups)
}

func (la *liveArtifact) View() *model.DeltaOverlay { return la.live.View() }

func (la *liveArtifact) Compact() error { return la.live.Compact() }

func (la *liveArtifact) Live() *model.Live { return la.live }

// Close flushes and closes the write-ahead log (no-op for a volatile
// artifact). In-flight background compactions are waited out first so
// their checkpoint lands in the log rather than racing its shutdown.
func (la *liveArtifact) Close() error {
	la.mu.Lock()
	log, closed := la.log, la.closed
	la.closed = true
	la.mu.Unlock()
	if log == nil || closed {
		return nil
	}
	la.live.Quiesce()
	return log.Close()
}

// Durability reports the artifact's persistence state.
func (la *liveArtifact) Durability() DurabilityStats {
	la.mu.Lock()
	defer la.mu.Unlock()
	if la.log == nil {
		return DurabilityStats{}
	}
	ws := la.log.Stats()
	ds := DurabilityStats{
		Enabled:             true,
		Dir:                 ws.Dir,
		Policy:              ws.Policy,
		LastLSN:             ws.NextLSN - 1,
		CheckpointLSN:       ws.CheckpointLSN,
		Segments:            ws.Segments,
		Appends:             ws.Appends,
		Syncs:               ws.Syncs,
		Checkpoints:         ws.Checkpoints,
		RecoveredRecords:    la.recRecords,
		RecoveredCheckpoint: la.recCkpt,
		RecoveryTruncated:   la.recTrunc,
		CheckpointFailures:  la.ckptFails,
	}
	if la.lastCkptErr != nil {
		ds.LastCheckpointError = la.lastCkptErr.Error()
	}
	return ds
}
